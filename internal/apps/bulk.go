package apps

import (
	"io"
	"time"

	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/sim"
	"tcpfailover/internal/tcp"
)

// SinkServer accepts connections and discards everything it receives,
// closing when the sender half-closes. It records per-connection byte
// counts (used by the client-to-server transfer experiments).
type SinkServer struct {
	Received int64
	Conns    int
}

// NewSinkServer installs a sink on port.
func NewSinkServer(stack *tcp.Stack, port uint16) (*SinkServer, error) {
	s := &SinkServer{}
	_, err := stack.Listen(port, func(c *tcp.Conn) {
		s.Conns++
		buf := make([]byte, copyBufSize)
		c.OnReadable(func() {
			for {
				n, err := c.Read(buf)
				if n > 0 {
					s.Received += int64(n)
					continue
				}
				if err == io.EOF {
					c.Close()
				}
				return
			}
		})
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// BulkSend connects to addr:port and sends total patterned bytes, then
// half-closes. The returned Transfer reports completion through callbacks
// and records the timestamps the paper's Figure 3 measures: when the
// application passed the last byte to the stack (SendDone) — "the send call
// returns when the application has passed the last byte to the stack, not
// when the last byte has been put on the wire" — and when the connection
// fully closed (Closed), by which time the receiver has acknowledged
// everything.
type Transfer struct {
	Conn        *tcp.Conn
	Total       int64
	Sent        int64
	Established time.Duration // virtual time the connection was established
	SendDone    time.Duration // virtual time the last byte entered the stack
	Closed      time.Duration
	Done        bool
	Err         error
	OnSent      func()
	OnClosed    func(error)

	sched  *sim.Scheduler
	chunk  []byte
	pacing Pacing
	paced  bool // a pacing continuation is pending
}

// Pacing models the synchronous cost of the application's send path (system
// call plus user-to-kernel copy). The paper's Figure 3 measures the send
// call's duration, so the sub-buffer-size region of the curve is shaped by
// exactly this cost.
type Pacing struct {
	Fixed time.Duration // per send call
	PerKB time.Duration // copy cost per KByte
}

// Cost returns the send-path cost of accepting n bytes.
func (p Pacing) Cost(n int) time.Duration {
	return p.Fixed + time.Duration(int64(p.PerKB)*int64(n)/1024)
}

func (p Pacing) zero() bool { return p.Fixed == 0 && p.PerKB == 0 }

// NewBulkSend starts a bulk client-to-server transfer.
func NewBulkSend(stack *tcp.Stack, sched *sim.Scheduler, addr ipv4.Addr, port uint16, total int64) (*Transfer, error) {
	return NewBulkSendPaced(stack, sched, addr, port, total, Pacing{})
}

// NewBulkSendPaced is NewBulkSend with an explicit send-path cost model.
func NewBulkSendPaced(stack *tcp.Stack, sched *sim.Scheduler, addr ipv4.Addr, port uint16, total int64, pacing Pacing) (*Transfer, error) {
	conn, err := stack.Dial(addr, port)
	if err != nil {
		return nil, err
	}
	t := &Transfer{Conn: conn, Total: total, sched: sched, chunk: make([]byte, copyBufSize), pacing: pacing}
	var pump func()
	pump = func() {
		if t.paced {
			return // continuation already scheduled
		}
		for t.Sent < t.Total {
			n := int64(len(t.chunk))
			if t.Total-t.Sent < n {
				n = t.Total - t.Sent
			}
			Pattern(t.chunk[:n], t.Sent)
			m, err := conn.Write(t.chunk[:n])
			if err != nil {
				t.Err = err
				return
			}
			if m == 0 {
				return // wait for OnWritable
			}
			t.Sent += int64(m)
			if !t.pacing.zero() {
				t.paced = true
				sched.After(t.pacing.Cost(m), "bulk.sendcost", func() {
					t.paced = false
					pump()
				})
				return
			}
		}
		if !t.Done {
			t.Done = true
			t.SendDone = sched.Now()
			conn.Close()
			if t.OnSent != nil {
				t.OnSent()
			}
		}
	}
	conn.OnEstablished(func() {
		t.Established = sched.Now()
		pump()
	})
	conn.OnWritable(pump)
	conn.OnClose(func(err error) {
		t.Closed = sched.Now()
		if err != nil && t.Err == nil {
			t.Err = err
		}
		if t.OnClosed != nil {
			t.OnClosed(err)
		}
	})
	return t, nil
}

// PushServer accepts a connection and immediately streams size patterned
// bytes to the client, then closes. Used for server-to-client rate
// experiments (Figure 5's receive direction).
type PushServer struct {
	Size int64
}

// NewPushServer installs a push server on port that sends size bytes to
// every client.
func NewPushServer(stack *tcp.Stack, port uint16, size int64) (*PushServer, error) {
	s := &PushServer{Size: size}
	_, err := stack.Listen(port, func(c *tcp.Conn) {
		var sent int64
		chunk := make([]byte, copyBufSize)
		pump := func() {
			for sent < s.Size {
				n := int64(len(chunk))
				if s.Size-sent < n {
					n = s.Size - sent
				}
				Pattern(chunk[:n], sent)
				m, err := c.Write(chunk[:n])
				if err != nil {
					return
				}
				if m == 0 {
					return
				}
				sent += int64(m)
			}
			c.Close()
		}
		c.OnWritable(pump)
		pump()
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Receiver drains a connection, verifying the deterministic pattern, and
// reports totals. Used by clients of PushServer.
type Receiver struct {
	Received   int64
	BadAt      int64 // offset of first corruption, -1 if none
	EOF        bool
	EOFAt      time.Duration
	OnComplete func()
}

// NewReceiver attaches pattern-verifying drain logic to an established
// connection.
func NewReceiver(c *tcp.Conn, sched *sim.Scheduler) *Receiver {
	r := &Receiver{BadAt: -1}
	buf := make([]byte, copyBufSize)
	c.OnReadable(func() {
		for {
			n, err := c.Read(buf)
			if n > 0 {
				if r.BadAt < 0 {
					if i := VerifyPattern(buf[:n], r.Received); i >= 0 {
						r.BadAt = r.Received + int64(i)
					}
				}
				r.Received += int64(n)
				continue
			}
			if err == io.EOF && !r.EOF {
				r.EOF = true
				r.EOFAt = sched.Now()
				c.Close()
				if r.OnComplete != nil {
					r.OnComplete()
				}
			}
			return
		}
	})
	return r
}
