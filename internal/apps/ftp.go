package apps

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/sim"
	"tcpfailover/internal/tcp"
)

// A simplified File Transfer Protocol (RFC 959 subset) — the paper's
// real-world application (section 9). The server listens on the well-known
// control port 21; for each transfer the client opens a listening socket on
// an ephemeral port, announces it with PORT, and the server connects *from*
// port 20 to the client — a server-initiated connection that exercises the
// bridge's section 7.2 establishment path when the server is replicated.
//
// The in-memory file system is deterministic: file content is the shared
// byte Pattern, so the replicas produce identical data streams and
// receivers can verify integrity.

// FTP well-known ports.
const (
	FTPControlPort = 21
	FTPDataPort    = 20
)

// FTPFiles maps file names to sizes.
type FTPFiles map[string]int64

// DefaultFTPFiles returns the paper's Figure 6 file set (sizes in KB:
// 0.2, 1.3, 18.2, 144.9, 1738.1).
func DefaultFTPFiles() FTPFiles {
	return FTPFiles{
		"tiny.txt":   205,
		"small.txt":  1331,
		"medium.bin": 18637,
		"large.bin":  148378,
		"huge.bin":   1779814,
	}
}

// Names returns the file names sorted by size.
func (f FTPFiles) Names() []string {
	names := make([]string, 0, len(f))
	for n := range f {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return f[names[i]] < f[names[j]] })
	return names
}

// lineReader accumulates CRLF- (or LF-) terminated lines from a connection.
type lineReader struct {
	buf []byte
}

// feed appends raw bytes and returns any complete lines.
func (lr *lineReader) feed(p []byte) []string {
	lr.buf = append(lr.buf, p...)
	var lines []string
	for {
		i := -1
		for j, b := range lr.buf {
			if b == '\n' {
				i = j
				break
			}
		}
		if i < 0 {
			return lines
		}
		line := strings.TrimRight(string(lr.buf[:i]), "\r")
		lr.buf = lr.buf[i+1:]
		lines = append(lines, line)
	}
}

// FTPServer serves the simplified protocol.
type FTPServer struct {
	stack *tcp.Stack
	files FTPFiles

	// Stored counts bytes accepted by STOR, keyed by file name.
	Stored map[string]int64
	// Sessions counts accepted control connections.
	Sessions int
}

// NewFTPServer installs an FTP server on the control port.
func NewFTPServer(stack *tcp.Stack, files FTPFiles) (*FTPServer, error) {
	s := &FTPServer{stack: stack, files: files, Stored: make(map[string]int64)}
	_, err := stack.Listen(FTPControlPort, func(c *tcp.Conn) {
		s.Sessions++
		sess := &ftpSession{srv: s, ctrl: c, buf: make([]byte, copyBufSize)}
		c.OnReadable(sess.onCtrlReadable)
		sess.reply("220 Service ready")
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

type ftpSession struct {
	srv  *FTPServer
	ctrl *tcp.Conn
	lr   lineReader
	buf  []byte

	dataAddr ipv4.Addr
	dataPort uint16

	busy    bool // a transfer is in progress; queue further commands
	pending []string
}

func (s *ftpSession) reply(line string) {
	// Control replies are short; the send buffer always has room.
	_, _ = s.ctrl.Write([]byte(line + "\r\n"))
}

func (s *ftpSession) onCtrlReadable() {
	for {
		n, err := s.ctrl.Read(s.buf)
		if n > 0 {
			for _, line := range s.lr.feed(s.buf[:n]) {
				if s.busy {
					s.pending = append(s.pending, line)
				} else {
					s.command(line)
				}
			}
			continue
		}
		if err == io.EOF {
			s.ctrl.Close()
		}
		return
	}
}

func (s *ftpSession) drainPending() {
	for !s.busy && len(s.pending) > 0 {
		line := s.pending[0]
		s.pending = s.pending[1:]
		s.command(line)
	}
}

func (s *ftpSession) command(line string) {
	verb, arg, _ := strings.Cut(line, " ")
	switch strings.ToUpper(verb) {
	case "USER":
		s.reply("331 User name okay, need password")
	case "PASS":
		s.reply("230 User logged in")
	case "PORT":
		addr, port, err := parsePortArg(arg)
		if err != nil {
			s.reply("501 Syntax error in parameters")
			return
		}
		s.dataAddr, s.dataPort = addr, port
		s.reply("200 PORT command successful")
	case "LIST":
		s.reply("150 Here comes the directory listing")
		for _, name := range s.srv.files.Names() {
			s.reply(fmt.Sprintf(" %-12s %d", name, s.srv.files[name]))
		}
		s.reply("226 Directory send OK")
	case "RETR":
		size, ok := s.srv.files[arg]
		if !ok {
			s.reply("550 File not found")
			return
		}
		s.transfer(func(data *tcp.Conn) { s.sendFile(data, size) })
	case "STOR":
		name := arg
		s.transfer(func(data *tcp.Conn) { s.recvFile(data, name) })
	case "QUIT":
		s.reply("221 Goodbye")
		s.ctrl.Close()
	default:
		s.reply("502 Command not implemented")
	}
}

// transfer opens the server-initiated data connection from port 20 and runs
// the given direction-specific handler.
func (s *ftpSession) transfer(run func(data *tcp.Conn)) {
	if s.dataPort == 0 {
		s.reply("425 Use PORT first")
		return
	}
	s.reply("150 Opening data connection")
	data, err := s.srv.stack.DialFrom(FTPDataPort, s.dataAddr, s.dataPort)
	if err != nil {
		s.reply("425 Can't open data connection")
		return
	}
	s.busy = true
	run(data)
}

func (s *ftpSession) finishTransfer(ok bool) {
	if ok {
		s.reply("226 Transfer complete")
	} else {
		s.reply("426 Connection closed; transfer aborted")
	}
	s.busy = false
	s.drainPending()
}

func (s *ftpSession) sendFile(data *tcp.Conn, size int64) {
	var sent int64
	finished := false
	chunk := make([]byte, copyBufSize)
	pump := func() {
		for sent < size {
			n := int64(len(chunk))
			if size-sent < n {
				n = size - sent
			}
			Pattern(chunk[:n], sent)
			m, err := data.Write(chunk[:n])
			if err != nil {
				return
			}
			if m == 0 {
				return
			}
			sent += int64(m)
		}
		data.Close()
		if !finished {
			// 226 is sent when the transfer completes from the server's
			// perspective; the connection's TIME-WAIT lingers independently.
			finished = true
			s.finishTransfer(true)
		}
	}
	data.OnEstablished(pump)
	data.OnWritable(pump)
	data.OnClose(func(err error) {
		if !finished {
			finished = true
			s.finishTransfer(err == nil && sent == size)
		}
	})
}

func (s *ftpSession) recvFile(data *tcp.Conn, name string) {
	var got int64
	finished := false
	buf := make([]byte, copyBufSize)
	data.OnReadable(func() {
		for {
			n, err := data.Read(buf)
			if n > 0 {
				got += int64(n)
				continue
			}
			if err == io.EOF {
				s.srv.Stored[name] = got
				data.Close()
				if !finished {
					finished = true
					s.finishTransfer(true)
				}
			}
			return
		}
	})
	data.OnClose(func(err error) {
		if !finished {
			finished = true
			s.finishTransfer(err == nil)
		}
	})
}

func parsePortArg(arg string) (ipv4.Addr, uint16, error) {
	parts := strings.Split(arg, ",")
	if len(parts) != 6 {
		return 0, 0, fmt.Errorf("ftp: bad PORT %q", arg)
	}
	var nums [6]int
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 || v > 255 {
			return 0, 0, fmt.Errorf("ftp: bad PORT %q", arg)
		}
		nums[i] = v
	}
	addr := ipv4.AddrFrom4(byte(nums[0]), byte(nums[1]), byte(nums[2]), byte(nums[3]))
	return addr, uint16(nums[4])<<8 | uint16(nums[5]), nil
}

func formatPortArg(addr ipv4.Addr, port uint16) string {
	a := uint32(addr)
	return fmt.Sprintf("%d,%d,%d,%d,%d,%d",
		byte(a>>24), byte(a>>16), byte(a>>8), byte(a), byte(port>>8), byte(port))
}

// FTPResult reports one completed client transfer.
type FTPResult struct {
	Name     string
	Bytes    int64
	Elapsed  time.Duration // data-phase time, first event to data-conn close
	RateKBps float64
	BadAt    int64 // pattern corruption offset for gets, -1 if clean
	Err      error
}

// FTPClient drives the simplified protocol against a (possibly replicated)
// server. Operations queue and execute sequentially, as interactive FTP
// clients do.
type FTPClient struct {
	stack     *tcp.Stack
	sched     *sim.Scheduler
	ownAddr   ipv4.Addr
	ctrl      *tcp.Conn
	lr        lineReader
	buf       []byte
	nextEphem uint16

	queue   []*ftpOp
	current *ftpOp
	// Done is invoked after QUIT completes and the control connection
	// closes.
	Done func()
	// PutPacing models the user-space client's per-write cost during
	// uploads (calibrated in EXPERIMENTS.md against the paper's figure 6
	// put rates, which are send-call-bound for sub-buffer files).
	PutPacing Pacing
}

type ftpOp struct {
	kind     string // LOGIN, GET, PUT, QUIT
	name     string
	size     int64
	cb       func(FTPResult)
	stage    int
	started  time.Duration
	got      int64
	sent     int64
	badAt    int64
	ended    bool // data phase complete
	sendDone time.Duration
	elapsed  time.Duration
}

// NewFTPClient connects to the server's control port.
func NewFTPClient(stack *tcp.Stack, sched *sim.Scheduler, ownAddr, server ipv4.Addr) (*FTPClient, error) {
	ctrl, err := stack.Dial(server, FTPControlPort)
	if err != nil {
		return nil, err
	}
	c := &FTPClient{
		stack:     stack,
		sched:     sched,
		ownAddr:   ownAddr,
		ctrl:      ctrl,
		buf:       make([]byte, copyBufSize),
		nextEphem: 40000,
	}
	ctrl.OnReadable(c.onCtrlReadable)
	ctrl.OnClose(func(error) {
		if c.Done != nil {
			c.Done()
		}
	})
	return c, nil
}

// Login queues a USER/PASS exchange.
func (c *FTPClient) Login(cb func(FTPResult)) { c.enqueue(&ftpOp{kind: "LOGIN", cb: cb}) }

// Get queues a download of name.
func (c *FTPClient) Get(name string, cb func(FTPResult)) {
	c.enqueue(&ftpOp{kind: "GET", name: name, cb: cb, badAt: -1})
}

// Put queues an upload of size patterned bytes as name.
func (c *FTPClient) Put(name string, size int64, cb func(FTPResult)) {
	c.enqueue(&ftpOp{kind: "PUT", name: name, size: size, cb: cb, badAt: -1})
}

// Quit queues session termination.
func (c *FTPClient) Quit() { c.enqueue(&ftpOp{kind: "QUIT"}) }

func (c *FTPClient) enqueue(op *ftpOp) {
	c.queue = append(c.queue, op)
	c.advance()
}

func (c *FTPClient) advance() {
	if c.current != nil || len(c.queue) == 0 {
		return
	}
	c.current = c.queue[0]
	c.queue = c.queue[1:]
	op := c.current
	switch op.kind {
	case "LOGIN":
		c.send("USER anonymous")
	case "GET", "PUT":
		port := c.nextEphem
		c.nextEphem++
		if err := c.openDataListener(op, port); err != nil {
			c.fail(op, err)
			return
		}
		c.send("PORT " + formatPortArg(c.ownAddr, port))
	case "QUIT":
		c.send("QUIT")
	}
}

func (c *FTPClient) send(line string) { _, _ = c.ctrl.Write([]byte(line + "\r\n")) }

func (c *FTPClient) fail(op *ftpOp, err error) {
	c.current = nil
	if op.cb != nil {
		op.cb(FTPResult{Name: op.name, Err: err})
	}
	c.advance()
}

func (c *FTPClient) complete(op *ftpOp) {
	rate := 0.0
	if op.elapsed > 0 {
		bytes := op.got
		if op.kind == "PUT" {
			bytes = op.sent
		}
		rate = float64(bytes) / 1024.0 / op.elapsed.Seconds()
	}
	c.current = nil
	if op.cb != nil {
		op.cb(FTPResult{
			Name:     op.name,
			Bytes:    op.got + op.sent,
			Elapsed:  op.elapsed,
			RateKBps: rate,
			BadAt:    op.badAt,
		})
	}
	c.advance()
}

// openDataListener arranges the client-side data socket for one transfer.
func (c *FTPClient) openDataListener(op *ftpOp, port uint16) error {
	var lst *tcp.Listener
	lst, err := c.stack.Listen(port, func(data *tcp.Conn) {
		lst.Close() // single-use data socket
		if op.started == 0 {
			// Uploads time the send loop only (see the put-rate comment);
			// downloads already started their clock at the command.
			op.started = c.sched.Now()
		}
		endData := func() {
			if !op.ended {
				op.ended = true
				op.elapsed = c.sched.Now() - op.started
				if op.kind == "PUT" && op.sendDone > 0 {
					op.elapsed = op.sendDone - op.started
				}
				c.maybeFinish(op)
			}
		}
		switch op.kind {
		case "GET":
			buf := make([]byte, copyBufSize)
			data.OnReadable(func() {
				for {
					n, rerr := data.Read(buf)
					if n > 0 {
						if op.badAt < 0 {
							if i := VerifyPattern(buf[:n], op.got); i >= 0 {
								op.badAt = op.got + int64(i)
							}
						}
						op.got += int64(n)
						continue
					}
					if rerr == io.EOF {
						data.Close()
						endData() // EOF ends the data phase; TIME-WAIT lingers
					}
					return
				}
			})
		case "PUT":
			chunk := make([]byte, copyBufSize)
			paced := false
			var pump func()
			pump = func() {
				if paced {
					return
				}
				for op.sent < op.size {
					n := int64(len(chunk))
					if op.size-op.sent < n {
						n = op.size - op.sent
					}
					Pattern(chunk[:n], op.sent)
					m, werr := data.Write(chunk[:n])
					if werr != nil {
						return
					}
					if m == 0 {
						return
					}
					op.sent += int64(m)
					if cost := c.PutPacing.Cost(m); cost > 0 {
						paced = true
						c.sched.After(cost, "ftp.putcost", func() {
							paced = false
							pump()
						})
						return
					}
				}
				if op.sendDone == 0 {
					// Upload rate is measured the way FTP clients report
					// it: bytes over the duration of the send loop, which
					// returns when the stack has accepted the last byte —
					// not when it reaches the wire (cf. the paper's
					// figure 6 put rates exceeding the link bandwidth for
					// small files).
					op.sendDone = c.sched.Now()
				}
				data.Close()
				endData()
			}
			data.OnWritable(pump)
			pump()
		}
		data.OnClose(func(error) { endData() })
	})
	return err
}

func (c *FTPClient) onCtrlReadable() {
	for {
		n, err := c.ctrl.Read(c.buf)
		if n > 0 {
			for _, line := range c.lr.feed(c.buf[:n]) {
				c.response(line)
			}
			continue
		}
		if err == io.EOF {
			c.ctrl.Close()
		}
		return
	}
}

func (c *FTPClient) response(line string) {
	op := c.current
	if op == nil || len(line) < 3 {
		return
	}
	code, err := strconv.Atoi(line[:3])
	if err != nil {
		return // continuation line (e.g. LIST output)
	}
	if code == 220 {
		return // server greeting banner
	}
	switch op.kind {
	case "LOGIN":
		switch code {
		case 331:
			c.send("PASS guest")
		case 230:
			c.complete(op)
		default:
			c.fail(op, fmt.Errorf("ftp: login rejected: %s", line))
		}
	case "GET", "PUT":
		switch {
		case code == 200 && op.stage == 0: // PORT accepted
			op.stage = 1
			if op.kind == "GET" {
				// Download rates are measured from the moment the command
				// is issued, the way interactive clients report them (the
				// paper's small-file get rates include this round trip).
				op.started = c.sched.Now()
				c.send("RETR " + op.name)
			} else {
				c.send("STOR " + op.name)
			}
		case code == 150:
			// Data connection announced; timing starts at accept.
		case code == 226:
			op.stage = 2
			c.maybeFinish(op)
		case code >= 400:
			c.fail(op, fmt.Errorf("ftp: %s", line))
		}
	case "QUIT":
		if code == 221 {
			c.current = nil
			c.ctrl.Close()
		}
	}
}

// maybeFinish completes a transfer op once both the data phase has ended
// and the 226 reply has arrived.
func (c *FTPClient) maybeFinish(op *ftpOp) {
	if op.ended && op.stage == 2 {
		c.complete(op)
	}
}
