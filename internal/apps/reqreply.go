package apps

import (
	"io"
	"time"

	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/sim"
	"tcpfailover/internal/tcp"
)

// The request/reply workload of the paper's Figure 4: the client sends a
// 4-byte message and the server sends back a reply whose size the client
// chose; the measurement is the time from the client starting to send the
// request until it receives the last byte of the reply.

// NewReqReplyServer installs a server that reads 4-byte big-endian reply
// sizes and answers each with that many patterned bytes. Multiple requests
// per connection are served sequentially — deterministically, as active
// replication requires.
func NewReqReplyServer(stack *tcp.Stack, port uint16) (*tcp.Listener, error) {
	return stack.Listen(port, func(c *tcp.Conn) {
		srv := &reqReplyConn{c: c, buf: make([]byte, copyBufSize)}
		c.OnReadable(srv.pump)
		c.OnWritable(srv.pump)
	})
}

type reqReplyConn struct {
	c       *tcp.Conn
	buf     []byte
	reqBuf  []byte
	replyN  int64 // bytes of current reply still to send
	replyAt int64 // pattern offset within current reply
	sawEOF  bool
}

func (s *reqReplyConn) pump() {
	for {
		// Finish the in-progress reply first.
		for s.replyN > 0 {
			n := s.replyN
			if n > int64(len(s.buf)) {
				n = int64(len(s.buf))
			}
			Pattern(s.buf[:n], s.replyAt)
			m, err := s.c.Write(s.buf[:n])
			if err != nil {
				return
			}
			if m == 0 {
				return // wait for writability
			}
			s.replyN -= int64(m)
			s.replyAt += int64(m)
		}
		if s.sawEOF {
			s.c.Close()
			return
		}
		n, err := s.c.Read(s.buf)
		if n > 0 {
			s.reqBuf = append(s.reqBuf, s.buf[:n]...)
		} else if err != nil {
			s.sawEOF = true
			continue
		} else {
			return
		}
		if len(s.reqBuf) >= 4 {
			size := int64(s.reqBuf[0])<<24 | int64(s.reqBuf[1])<<16 |
				int64(s.reqBuf[2])<<8 | int64(s.reqBuf[3])
			s.reqBuf = s.reqBuf[4:]
			s.replyN = size
			s.replyAt = 0
		}
	}
}

// ReqReplyClient issues sized requests over one connection and measures
// request-to-last-reply-byte latency.
type ReqReplyClient struct {
	Conn  *tcp.Conn
	sched *sim.Scheduler

	started   time.Duration
	want      int64
	got       int64
	buf       []byte
	onDone    func(elapsed time.Duration)
	connected bool
	pendingSz int64
}

// NewReqReplyClient dials the server; the connection is usable once
// established (requests issued earlier are queued).
func NewReqReplyClient(stack *tcp.Stack, sched *sim.Scheduler, addr ipv4.Addr, port uint16) (*ReqReplyClient, error) {
	conn, err := stack.Dial(addr, port)
	if err != nil {
		return nil, err
	}
	cl := &ReqReplyClient{Conn: conn, sched: sched, buf: make([]byte, copyBufSize)}
	conn.OnEstablished(func() {
		cl.connected = true
		if cl.pendingSz > 0 {
			sz := cl.pendingSz
			cl.pendingSz = 0
			cl.issue(sz)
		}
	})
	conn.OnReadable(func() {
		for {
			n, err := conn.Read(cl.buf)
			if n > 0 {
				cl.got += int64(n)
				if cl.got >= cl.want && cl.want > 0 {
					done := cl.onDone
					elapsed := sched.Now() - cl.started
					cl.want = 0
					if done != nil {
						done(elapsed)
					}
				}
				continue
			}
			if err == io.EOF {
				conn.Close()
			}
			return
		}
	})
	return cl, nil
}

// Request asks for a reply of size bytes; onDone receives the elapsed
// virtual time when the last reply byte arrives. Requests made before the
// connection is established are issued once it is; the measured interval
// starts when the request bytes enter the stack, matching the paper's
// "time between the client starting to send the 4-byte message and the
// client receiving the last byte of the reply".
func (cl *ReqReplyClient) Request(size int64, onDone func(elapsed time.Duration)) {
	cl.want = size
	cl.got = 0
	cl.onDone = onDone
	if !cl.connected {
		cl.pendingSz = size
		return
	}
	cl.issue(size)
}

func (cl *ReqReplyClient) issue(size int64) {
	cl.started = cl.sched.Now()
	req := []byte{byte(size >> 24), byte(size >> 16), byte(size >> 8), byte(size)}
	_, _ = cl.Conn.Write(req)
}

// Close half-closes the client side.
func (cl *ReqReplyClient) Close() { cl.Conn.Close() }
