package apps

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/sim"
	"tcpfailover/internal/tcp"
)

// An HTTP/1.1-style keep-alive request/response application: the workload
// shape of the open-loop experiments (internal/loadgen). The protocol is a
// faithful subset of HTTP/1.1 framing — request line, headers, blank line,
// Content-Length-delimited bodies, persistent connections, and
// "Connection: close" — restricted to GET so both replicas of a failover
// pair produce byte-identical responses from the client's request stream
// alone, the property the paper's active replication requires.
//
// Requests name the reply size in the path: "GET /bytes/N HTTP/1.1". The
// server answers with a patterned body of N bytes. On the final request of
// a session the client sends "Connection: close" and the *server* closes
// first; the client's port leaves the tuple map as soon as its LAST-ACK is
// answered instead of lingering in TIME-WAIT, which is what lets an
// open-loop generator churn thousands of connections per second through
// one client stack's 16384 ephemeral ports.

// httpMaxHeader bounds a request or response head; longer heads are a
// protocol error and reset the connection.
const httpMaxHeader = 4096

// HTTPServer serves the sized-reply protocol on one port.
type HTTPServer struct {
	// Conns counts accepted connections; Requests, responses served;
	// BytesOut, body bytes written.
	Conns    int64
	Requests int64
	BytesOut int64
}

// NewHTTPServer installs the keep-alive server on port.
func NewHTTPServer(stack *tcp.Stack, port uint16) (*HTTPServer, error) {
	s := &HTTPServer{}
	_, err := stack.Listen(port, func(c *tcp.Conn) {
		s.Conns++
		h := &httpServerConn{srv: s, c: c, buf: make([]byte, copyBufSize)}
		c.OnReadable(h.pump)
		c.OnWritable(h.pump)
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

type httpServerConn struct {
	srv  *HTTPServer
	c    *tcp.Conn
	buf  []byte
	head []byte // accumulated request head (through the blank line)

	// In-progress response.
	header  []byte // response head still to write
	bodyN   int64  // body bytes still to write
	bodyAt  int64  // pattern offset within the body
	closing bool   // current response carries Connection: close
	sawEOF  bool
}

func (h *httpServerConn) pump() {
	for {
		// Flush the in-progress response first, head then body.
		for len(h.header) > 0 {
			n, err := h.c.Write(h.header)
			if err != nil {
				return
			}
			if n == 0 {
				return // wait for OnWritable
			}
			h.header = h.header[n:]
		}
		for h.bodyN > 0 {
			n := h.bodyN
			if n > int64(len(h.buf)) {
				n = int64(len(h.buf))
			}
			Pattern(h.buf[:n], h.bodyAt)
			m, err := h.c.Write(h.buf[:n])
			if err != nil {
				return
			}
			if m == 0 {
				return
			}
			h.bodyN -= int64(m)
			h.bodyAt += int64(m)
			h.srv.BytesOut += int64(m)
		}
		if h.closing || h.sawEOF {
			// Server-initiated close: the response promised Connection: close
			// (or the client half-closed). TIME-WAIT lands here, not on the
			// churning client.
			h.c.Close()
			return
		}
		// Read more of the next request.
		n, err := h.c.Read(h.buf)
		if n > 0 {
			h.head = append(h.head, h.buf[:n]...)
			if len(h.head) > httpMaxHeader {
				h.c.Abort()
				return
			}
			if i := strings.Index(string(h.head), "\r\n\r\n"); i >= 0 {
				req := string(h.head[:i])
				rest := h.head[i+4:]
				h.head = append(h.head[:0], rest...)
				if !h.serve(req) {
					h.c.Abort()
					return
				}
				continue // flush the new response
			}
			continue
		}
		if err != nil { // io.EOF or terminal error
			h.sawEOF = true
			continue
		}
		return // no data yet
	}
}

// serve parses one request head and stages the response; false means a
// malformed request.
func (h *httpServerConn) serve(head string) bool {
	lines := strings.Split(head, "\r\n")
	fields := strings.Fields(lines[0])
	if len(fields) != 3 || fields[0] != "GET" || fields[2] != "HTTP/1.1" {
		return false
	}
	size, ok := parseBytesPath(fields[1])
	if !ok {
		return false
	}
	h.closing = false
	for _, l := range lines[1:] {
		if k, v, ok := strings.Cut(l, ":"); ok &&
			strings.EqualFold(strings.TrimSpace(k), "Connection") &&
			strings.EqualFold(strings.TrimSpace(v), "close") {
			h.closing = true
		}
	}
	conn := "keep-alive"
	if h.closing {
		conn = "close"
	}
	h.header = append(h.header[:0], fmt.Sprintf(
		"HTTP/1.1 200 OK\r\nContent-Length: %d\r\nConnection: %s\r\n\r\n", size, conn)...)
	h.bodyN = size
	h.bodyAt = 0
	h.srv.Requests++
	return true
}

// parseBytesPath extracts N from "/bytes/N".
func parseBytesPath(p string) (int64, bool) {
	const prefix = "/bytes/"
	if !strings.HasPrefix(p, prefix) {
		return 0, false
	}
	n, err := strconv.ParseInt(p[len(prefix):], 10, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// HTTPClient issues sequential GETs over one connection and reports each
// response's client-visible completion. It is the session half of the
// open-loop generator: requests may be queued before the connection is
// established (they ride the handshake), so the first response's latency
// includes connection setup, exactly what a user behind a crashed primary
// experiences.
type HTTPClient struct {
	Conn *tcp.Conn

	// Got counts verified body bytes delivered across all responses.
	Got int64
	// Responses counts completed responses.
	Responses int64
	// BadBody is true if any body byte failed pattern verification.
	BadBody bool
	// OnClosed, when set, observes the connection's full close (the tcp
	// OnClose slot itself belongs to the client).
	OnClosed func(error)

	sched *sim.Scheduler
	buf   []byte
	head  []byte

	want    int64 // body bytes outstanding for the current response
	bodyLen int64 // current response's Content-Length
	inBody  bool
	onDone  func()
	closed  bool
}

// NewHTTPClient dials the server. Get may be called immediately.
func NewHTTPClient(stack *tcp.Stack, sched *sim.Scheduler, addr ipv4.Addr, port uint16) (*HTTPClient, error) {
	conn, err := stack.Dial(addr, port)
	if err != nil {
		return nil, err
	}
	cl := &HTTPClient{Conn: conn, sched: sched, buf: make([]byte, copyBufSize)}
	conn.OnReadable(cl.readable)
	conn.OnClose(func(err error) {
		cl.closed = true
		if cl.OnClosed != nil {
			cl.OnClosed(err)
		}
	})
	return cl, nil
}

// Get requests an n-byte response; onDone fires when its last body byte
// arrives. Calls must be sequential: the next Get only after the previous
// onDone (HTTP/1.1 without pipelining). last adds Connection: close, after
// which the server closes the connection.
func (cl *HTTPClient) Get(n int64, last bool, onDone func()) {
	conn := "keep-alive"
	if last {
		conn = "close"
	}
	req := fmt.Sprintf("GET /bytes/%d HTTP/1.1\r\nHost: svc\r\nConnection: %s\r\n\r\n", n, conn)
	cl.onDone = onDone
	// The send buffer (64 KB) dwarfs a request line; a zero-byte accept can
	// only mean the connection is dead, which OnClose reports separately.
	_, _ = cl.Conn.Write([]byte(req))
}

func (cl *HTTPClient) readable() {
	for {
		n, err := cl.Conn.Read(cl.buf)
		if n == 0 {
			if err != nil {
				cl.Conn.Close()
			}
			return
		}
		cl.feed(cl.buf[:n])
	}
}

// feed advances the response parser: head until the blank line, then a
// Content-Length body, then back to head state for the next response.
func (cl *HTTPClient) feed(p []byte) {
	for len(p) > 0 {
		if !cl.inBody {
			cl.head = append(cl.head, p...)
			i := strings.Index(string(cl.head), "\r\n\r\n")
			if i < 0 {
				if len(cl.head) > httpMaxHeader {
					cl.Conn.Abort()
				}
				return
			}
			rest := cl.head[i+4:]
			cl.want = parseContentLength(string(cl.head[:i]))
			cl.bodyLen = cl.want
			cl.head = cl.head[:0]
			cl.inBody = true
			p = append([]byte(nil), rest...)
			if cl.want < 0 {
				cl.Conn.Abort()
				return
			}
			if cl.want == 0 {
				cl.finishResponse()
			}
			continue
		}
		n := int64(len(p))
		if n > cl.want {
			n = cl.want
		}
		if VerifyPattern(p[:n], cl.wantOffset()) >= 0 {
			cl.BadBody = true
		}
		cl.Got += n
		cl.want -= n
		p = p[n:]
		if cl.want == 0 {
			cl.finishResponse()
		}
	}
}

// wantOffset is the pattern offset of the next body byte: every response
// body restarts the deterministic pattern at zero.
func (cl *HTTPClient) wantOffset() int64 { return cl.bodyLen - cl.want }

func parseContentLength(head string) int64 {
	lines := strings.Split(head, "\r\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "HTTP/1.1 200") {
		return -1
	}
	for _, l := range lines[1:] {
		if k, v, ok := strings.Cut(l, ":"); ok &&
			strings.EqualFold(strings.TrimSpace(k), "Content-Length") {
			n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
			if err != nil || n < 0 {
				return -1
			}
			return n
		}
	}
	return -1
}

func (cl *HTTPClient) finishResponse() {
	cl.inBody = false
	cl.Responses++
	if done := cl.onDone; done != nil {
		cl.onDone = nil
		done()
	}
}

// Closed reports whether the connection has fully closed.
func (cl *HTTPClient) Closed() bool { return cl.closed }

// Now exposes the session's scheduler clock (latency bookkeeping lives in
// the caller).
func (cl *HTTPClient) Now() time.Duration { return cl.sched.Now() }
