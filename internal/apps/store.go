package apps

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"tcpfailover/internal/tcp"
)

// The online store from the paper's introduction: "Unless two customers
// compete for the last remaining item, each client will get a well-defined
// response to a browse or purchase request — independent of the fact that
// the server implementation uses an independent thread per client." The
// protocol is line-oriented:
//
//	BROWSE <item>        -> 200 <item> <price-cents> <stock> <desc> | 404 no such item
//	BUY <item> <qty>     -> 201 ORDER <id> <item> <qty> <total-cents> | 409 insufficient stock
//	LIST                 -> 200 <n items> followed by one line per item, then .
//	QUIT                 -> 221 bye (server closes)
//
// Order identifiers are deterministic per connection (the paper's
// per-connection determinism requirement), so both replicas emit identical
// bytes.

// StoreItem is one catalog entry.
type StoreItem struct {
	Name       string
	PriceCents int64
	Stock      int64
	Desc       string
}

// Catalog is the store inventory.
type Catalog map[string]*StoreItem

// DefaultCatalog returns a small deterministic catalog.
func DefaultCatalog() Catalog {
	items := []*StoreItem{
		{Name: "keyboard", PriceCents: 4999, Stock: 120, Desc: "mechanical keyboard"},
		{Name: "mouse", PriceCents: 1999, Stock: 300, Desc: "optical mouse"},
		{Name: "monitor", PriceCents: 24999, Stock: 40, Desc: "19-inch CRT"},
		{Name: "nic", PriceCents: 2999, Stock: 75, Desc: "100 Mbit/s Ethernet card"},
		{Name: "cable", PriceCents: 499, Stock: 1000, Desc: "cat-5 patch cable"},
	}
	c := make(Catalog, len(items))
	for _, it := range items {
		c[it.Name] = it
	}
	return c
}

// names returns catalog names in deterministic order.
func (c Catalog) names() []string {
	out := make([]string, 0, len(c))
	for n := range c {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// StoreServer is the replicated online store.
type StoreServer struct {
	catalog Catalog
	// Orders counts completed purchases (all connections).
	Orders int64
}

// NewStoreServer installs the store on port.
func NewStoreServer(stack *tcp.Stack, port uint16, catalog Catalog) (*StoreServer, error) {
	s := &StoreServer{catalog: catalog}
	_, err := stack.Listen(port, func(c *tcp.Conn) {
		sess := &storeSession{srv: s, conn: c, buf: make([]byte, copyBufSize), nextOrder: 1000}
		c.OnReadable(sess.onReadable)
		c.OnWritable(sess.flush)
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

type storeSession struct {
	srv       *StoreServer
	conn      *tcp.Conn
	lr        lineReader
	buf       []byte
	out       []byte
	nextOrder int64
	quitting  bool
}

func (s *storeSession) reply(line string) {
	s.out = append(s.out, line...)
	s.out = append(s.out, '\n')
	s.flush()
}

func (s *storeSession) flush() {
	for len(s.out) > 0 {
		n, err := s.conn.Write(s.out)
		if err != nil || n == 0 {
			return
		}
		s.out = s.out[n:]
	}
	if s.quitting {
		s.conn.Close()
	}
}

func (s *storeSession) onReadable() {
	for {
		n, err := s.conn.Read(s.buf)
		if n > 0 {
			for _, line := range s.lr.feed(s.buf[:n]) {
				s.command(line)
			}
			continue
		}
		if err == io.EOF {
			s.conn.Close()
		}
		return
	}
}

func (s *storeSession) command(line string) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return
	}
	switch strings.ToUpper(fields[0]) {
	case "LIST":
		names := s.srv.catalog.names()
		s.reply(fmt.Sprintf("200 %d items", len(names)))
		for _, n := range names {
			it := s.srv.catalog[n]
			s.reply(fmt.Sprintf("%s %d %d %s", it.Name, it.PriceCents, it.Stock, it.Desc))
		}
		s.reply(".")
	case "BROWSE":
		if len(fields) != 2 {
			s.reply("400 usage: BROWSE <item>")
			return
		}
		it, ok := s.srv.catalog[fields[1]]
		if !ok {
			s.reply("404 no such item")
			return
		}
		s.reply(fmt.Sprintf("200 %s %d %d %s", it.Name, it.PriceCents, it.Stock, it.Desc))
	case "BUY":
		if len(fields) != 3 {
			s.reply("400 usage: BUY <item> <qty>")
			return
		}
		qty, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil || qty <= 0 {
			s.reply("400 bad quantity")
			return
		}
		it, ok := s.srv.catalog[fields[1]]
		if !ok {
			s.reply("404 no such item")
			return
		}
		if it.Stock < qty {
			s.reply("409 insufficient stock")
			return
		}
		it.Stock -= qty
		id := s.nextOrder
		s.nextOrder++
		s.srv.Orders++
		s.reply(fmt.Sprintf("201 ORDER %d %s %d %d", id, it.Name, qty, qty*it.PriceCents))
	case "QUIT":
		s.reply("221 bye")
		s.quitting = true
		s.flush()
	default:
		s.reply("400 unknown command")
	}
}
