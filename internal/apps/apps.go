// Package apps provides the deterministic server applications and client
// workload generators used by the examples and the benchmark harness: an
// echo server, bulk stream sources and sinks, a request/reply server, a
// simplified FTP server and client (the paper's real-world application),
// the online store from the paper's introduction, and a key-value back end
// for server-initiated connections.
//
// All applications are written against the event-driven socket API of
// internal/tcp and are deterministic on a per-connection basis, the
// property the paper's active replication requires: when a client connects
// and issues a request, both replicas produce byte-identical replies.
package apps

import "tcpfailover/internal/tcp"

// copyBufSize is the scratch-buffer size used by the pump loops.
const copyBufSize = 32 * 1024

// Pattern fills p with a deterministic byte pattern seeded by off; both
// replicas generate identical streams, and receivers can verify integrity.
func Pattern(p []byte, off int64) {
	for i := range p {
		x := off + int64(i)
		p[i] = byte(x*131 + (x>>8)*31 + (x>>16)*7)
	}
}

// VerifyPattern checks that p matches the deterministic pattern at off,
// returning the index of the first mismatch or -1.
func VerifyPattern(p []byte, off int64) int {
	for i := range p {
		x := off + int64(i)
		if p[i] != byte(x*131+(x>>8)*31+(x>>16)*7) {
			return i
		}
	}
	return -1
}

// drainAndEcho is the shared pump used by the echo server.
type echoConn struct {
	c       *tcp.Conn
	pending []byte
	sawEOF  bool
	buf     []byte
}

func (e *echoConn) pump() {
	for {
		// Flush pending bytes first so reads don't overrun the send buffer.
		for len(e.pending) > 0 {
			n, err := e.c.Write(e.pending)
			if err != nil {
				return
			}
			if n == 0 {
				return // wait for OnWritable
			}
			e.pending = e.pending[n:]
		}
		if e.sawEOF {
			e.c.Close()
			return
		}
		n, err := e.c.Read(e.buf)
		if n > 0 {
			e.pending = append(e.pending, e.buf[:n]...)
			continue
		}
		if err != nil { // io.EOF or a terminal error
			e.sawEOF = true
			continue
		}
		return // no data yet
	}
}

// NewEchoServer installs an echo service: every accepted connection has its
// bytes reflected back until the client half-closes, then the server closes
// its direction. Echo is trivially deterministic, making it the canonical
// replicated test application.
func NewEchoServer(stack *tcp.Stack, port uint16) (*tcp.Listener, error) {
	return stack.Listen(port, func(c *tcp.Conn) {
		e := &echoConn{c: c, buf: make([]byte, copyBufSize)}
		c.OnReadable(e.pump)
		c.OnWritable(e.pump)
	})
}
