package apps

import (
	"testing"
	"time"

	"tcpfailover/internal/ethernet"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/sim"
)

// httpPair wires two hosts on one segment with an HTTP server on the first.
func httpPair(t *testing.T) (*sim.Scheduler, *netstack.Host, *netstack.Host, *HTTPServer) {
	t.Helper()
	sched := sim.New(11)
	seg := ethernet.NewSegment(sched, ethernet.Config{})
	pfx := ipv4.PrefixFrom(ipv4.MustParseAddr("10.9.0.0"), 24)
	srvAddr := ipv4.MustParseAddr("10.9.0.1")
	clAddr := ipv4.MustParseAddr("10.9.0.2")
	srv := netstack.NewHost(sched, "server", netstack.DefaultProfile())
	srv.AttachIface(seg, ethernet.MAC{2, 0, 0, 9, 0, 1}, srvAddr, pfx)
	cl := netstack.NewHost(sched, "client", netstack.DefaultProfile())
	cl.AttachIface(seg, ethernet.MAC{2, 0, 0, 9, 0, 2}, clAddr, pfx)
	s, err := NewHTTPServer(srv.TCP(), 80)
	if err != nil {
		t.Fatal(err)
	}
	return sched, srv, cl, s
}

// TestHTTPKeepAliveSession drives three sequential GETs over one connection
// and checks framing, pattern bodies, and the server-side close on the last
// response.
func TestHTTPKeepAliveSession(t *testing.T) {
	sched, _, cl, srv := httpPair(t)
	c, err := NewHTTPClient(cl.TCP(), sched, ipv4.MustParseAddr("10.9.0.1"), 80)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int64{0, 777, 64 * 1024}
	var issue func(i int)
	issue = func(i int) {
		c.Get(sizes[i], i == len(sizes)-1, func() {
			if i < len(sizes)-1 {
				issue(i + 1)
			}
		})
	}
	issue(0)
	if err := sched.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if c.Responses != 3 {
		t.Fatalf("responses = %d, want 3", c.Responses)
	}
	var want int64
	for _, s := range sizes {
		want += s
	}
	if c.Got != want || c.BadBody {
		t.Fatalf("got %d body bytes (bad=%v), want %d clean", c.Got, c.BadBody, want)
	}
	if srv.Requests != 3 || srv.BytesOut != want {
		t.Fatalf("server served %d requests / %d bytes, want 3 / %d", srv.Requests, srv.BytesOut, want)
	}
	if !c.Closed() {
		t.Fatal("connection still open after Connection: close response")
	}
}

// TestHTTPRequestBeforeEstablished queues the GET at dial time: it must ride
// the handshake and complete normally — the property that lets the open-loop
// generator measure first-request latency from the arrival instant.
func TestHTTPRequestBeforeEstablished(t *testing.T) {
	sched, _, cl, _ := httpPair(t)
	c, err := NewHTTPClient(cl.TCP(), sched, ipv4.MustParseAddr("10.9.0.1"), 80)
	if err != nil {
		t.Fatal(err)
	}
	done := false
	c.Get(1234, true, func() { done = true })
	if err := sched.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if !done || c.Got != 1234 || c.BadBody {
		t.Fatalf("done=%v got=%d bad=%v, want 1234 clean bytes", done, c.Got, c.BadBody)
	}
}

// TestHTTPServerClosesFirst pins the port-recycling property: after a
// Connection: close exchange the *client's* tuple must leave its stack (the
// client must not be the TIME-WAIT side), so churned ephemeral ports free
// promptly.
func TestHTTPServerClosesFirst(t *testing.T) {
	sched, srv, cl, _ := httpPair(t)
	c, err := NewHTTPClient(cl.TCP(), sched, ipv4.MustParseAddr("10.9.0.1"), 80)
	if err != nil {
		t.Fatal(err)
	}
	c.Get(100, true, nil)
	if err := sched.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if n := len(cl.TCP().Conns()); n != 0 {
		t.Errorf("client still holds %d conns after close (TIME-WAIT on the wrong side?)", n)
	}
	// The server side is the one allowed to linger in TIME-WAIT.
	_ = srv
}

// TestHTTPMalformedRequest: a garbage request line must reset the
// connection, not wedge the parser.
func TestHTTPMalformedRequest(t *testing.T) {
	sched, _, cl, srv := httpPair(t)
	conn, err := cl.TCP().Dial(ipv4.MustParseAddr("10.9.0.1"), 80)
	if err != nil {
		t.Fatal(err)
	}
	reset := false
	conn.OnClose(func(err error) { reset = err != nil })
	conn.OnEstablished(func() {
		_, _ = conn.Write([]byte("BREW /coffee HTCPCP/1.0\r\n\r\n"))
	})
	if err := sched.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !reset {
		t.Error("malformed request did not reset the connection")
	}
	if srv.Requests != 0 {
		t.Errorf("server counted %d requests for garbage", srv.Requests)
	}
}
