package arp_test

import (
	"testing"
	"time"

	"tcpfailover/internal/arp"
	"tcpfailover/internal/ethernet"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/sim"
)

type station struct {
	nic *ethernet.NIC
	mod *arp.Module
	ip  ipv4.Addr
}

func newStation(sched *sim.Scheduler, seg *ethernet.Segment, mac ethernet.MAC, ip ipv4.Addr, cfg arp.Config) *station {
	st := &station{ip: ip}
	st.nic = seg.Attach(mac)
	st.mod = arp.New(sched, st.nic, cfg,
		func(a ipv4.Addr) bool { return a == st.ip },
		func() ipv4.Addr { return st.ip })
	st.nic.SetHandler(func(f ethernet.Frame) {
		if f.Type == ethernet.TypeARP {
			st.mod.HandleFrame(f)
		}
	})
	return st
}

var (
	ipA  = ipv4.MustParseAddr("10.0.0.1")
	ipB  = ipv4.MustParseAddr("10.0.0.2")
	macA = ethernet.MAC{2, 0, 0, 0, 0, 0xa}
	macB = ethernet.MAC{2, 0, 0, 0, 0, 0xb}
)

func TestPacketRoundTrip(t *testing.T) {
	p := arp.Packet{Op: arp.OpRequest, SenderMAC: macA, SenderIP: ipA, TargetMAC: macB, TargetIP: ipB}
	got, err := arp.Unmarshal(arp.Marshal(p))
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Errorf("round trip: %+v != %+v", got, p)
	}
	if _, err := arp.Unmarshal(make([]byte, 10)); err == nil {
		t.Error("truncated packet accepted")
	}
}

func TestResolveViaRequestReply(t *testing.T) {
	sched := sim.New(1)
	seg := ethernet.NewSegment(sched, ethernet.Config{})
	a := newStation(sched, seg, macA, ipA, arp.Config{})
	newStation(sched, seg, macB, ipB, arp.Config{})

	var gotMAC ethernet.MAC
	var gotErr error
	a.mod.Resolve(ipB, func(m ethernet.MAC, err error) { gotMAC, gotErr = m, err })
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if gotErr != nil {
		t.Fatalf("resolve: %v", gotErr)
	}
	if gotMAC != macB {
		t.Errorf("resolved %v, want %v", gotMAC, macB)
	}
	// Second resolve hits the cache synchronously.
	hit := false
	a.mod.Resolve(ipB, func(m ethernet.MAC, err error) { hit = m == macB && err == nil })
	if !hit {
		t.Error("cache hit did not resolve synchronously")
	}
}

func TestResolveCoalescesWaiters(t *testing.T) {
	sched := sim.New(1)
	seg := ethernet.NewSegment(sched, ethernet.Config{})
	a := newStation(sched, seg, macA, ipA, arp.Config{})
	b := newStation(sched, seg, macB, ipB, arp.Config{})
	_ = b

	done := 0
	for range 3 {
		a.mod.Resolve(ipB, func(m ethernet.MAC, err error) {
			if err == nil && m == macB {
				done++
			}
		})
	}
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 3 {
		t.Errorf("%d waiters completed, want 3", done)
	}
}

func TestResolveTimesOutAfterRetries(t *testing.T) {
	sched := sim.New(1)
	seg := ethernet.NewSegment(sched, ethernet.Config{})
	a := newStation(sched, seg, macA, ipA, arp.Config{RequestTimeout: 100 * time.Millisecond, MaxRetries: 3})

	var gotErr error
	a.mod.Resolve(ipB, func(m ethernet.MAC, err error) { gotErr = err })
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if gotErr == nil {
		t.Fatal("resolution of absent station succeeded")
	}
	if sched.Now() < 300*time.Millisecond {
		t.Errorf("gave up at %v, want after 3 timeouts", sched.Now())
	}
}

// TestGratuitousARPRebindsAddress is the paper's IP takeover: a gratuitous
// announcement moves an address to a new MAC in every station's cache.
func TestGratuitousARPRebindsAddress(t *testing.T) {
	sched := sim.New(1)
	seg := ethernet.NewSegment(sched, ethernet.Config{})
	a := newStation(sched, seg, macA, ipA, arp.Config{})
	newStation(sched, seg, macB, ipB, arp.Config{})
	macS := ethernet.MAC{2, 0, 0, 0, 0, 0x5}
	s := newStation(sched, seg, macS, ipv4.MustParseAddr("10.0.0.3"), arp.Config{})

	a.mod.Seed(ipB, macB)
	if got, _ := a.mod.Lookup(ipB); got != macB {
		t.Fatal("seed failed")
	}
	// The takeover: station S claims ipB.
	s.ip = ipB
	if err := s.mod.Announce(ipB); err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if got, ok := a.mod.Lookup(ipB); !ok || got != macS {
		t.Errorf("after gratuitous ARP, %v -> %v (ok=%v), want %v", ipB, got, ok, macS)
	}
}

// TestProcessingDelayDefersUpdate models the router's ARP-table latency,
// part of the paper's takeover window T.
func TestProcessingDelayDefersUpdate(t *testing.T) {
	const delay = 5 * time.Millisecond
	sched := sim.New(1)
	seg := ethernet.NewSegment(sched, ethernet.Config{})
	a := newStation(sched, seg, macA, ipA, arp.Config{ProcessingDelay: delay})
	b := newStation(sched, seg, macB, ipB, arp.Config{})

	if err := b.mod.Announce(ipB); err != nil {
		t.Fatal(err)
	}
	// Run just past frame delivery but before the processing delay.
	if err := sched.RunUntil(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.mod.Lookup(ipB); ok {
		t.Error("cache updated before the processing delay elapsed")
	}
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if got, ok := a.mod.Lookup(ipB); !ok || got != macB {
		t.Error("cache not updated after the processing delay")
	}
}

func TestEntryExpiry(t *testing.T) {
	sched := sim.New(1)
	seg := ethernet.NewSegment(sched, ethernet.Config{})
	a := newStation(sched, seg, macA, ipA, arp.Config{EntryTTL: 10 * time.Millisecond})
	a.mod.Seed(ipB, macB)
	if _, ok := a.mod.Lookup(ipB); !ok {
		t.Fatal("entry missing right after seed")
	}
	if err := sched.RunUntil(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.mod.Lookup(ipB); ok {
		t.Error("entry still valid after TTL")
	}
	a.mod.Flush()
}

func TestNoReplyToGratuitousForOwnAddress(t *testing.T) {
	// A station must not answer a gratuitous ARP for an address it owns
	// with a reply storm; gratuitous requests have sender == target.
	sched := sim.New(1)
	seg := ethernet.NewSegment(sched, ethernet.Config{})
	a := newStation(sched, seg, macA, ipA, arp.Config{})
	b := newStation(sched, seg, macB, ipB, arp.Config{})
	_ = b
	if err := a.mod.Announce(ipA); err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	// One broadcast frame total: no replies.
	if got := seg.Stats().Frames; got != 1 {
		t.Errorf("%d frames on the wire, want 1 (no replies to gratuitous ARP)", got)
	}
}
