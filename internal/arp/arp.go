// Package arp implements the Address Resolution Protocol for the simulated
// Ethernet, including the gratuitous ARP announcement that realizes the
// paper's IP takeover (reference [4] of the paper): when the secondary
// server takes over the primary's address, it broadcasts an ARP that causes
// the router to rebind the address to the secondary's MAC. The configurable
// processing delay on the router side contributes to the paper's interval T
// during which in-flight segments are lost and must be recovered by TCP
// retransmission.
package arp

import (
	"errors"
	"fmt"
	"time"

	"tcpfailover/internal/ethernet"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/sim"
)

// Operation codes.
const (
	OpRequest = 1
	OpReply   = 2
)

// PacketLen is the length of an Ethernet/IPv4 ARP packet.
const PacketLen = 28

// Packet is a parsed ARP packet.
type Packet struct {
	Op        uint16
	SenderMAC ethernet.MAC
	SenderIP  ipv4.Addr
	TargetMAC ethernet.MAC
	TargetIP  ipv4.Addr
}

// ErrTruncated is returned when unmarshaling a short packet.
var ErrTruncated = errors.New("arp: truncated packet")

// ErrUnresolvable is reported to Resolve callbacks after retries expire.
var ErrUnresolvable = errors.New("arp: address did not resolve")

// Marshal renders the packet in wire format.
func Marshal(p Packet) []byte {
	b := make([]byte, PacketLen)
	b[0], b[1] = 0, 1 // hardware type: Ethernet
	b[2], b[3] = 0x08, 0x00
	b[4], b[5] = 6, 4 // address lengths
	b[6] = byte(p.Op >> 8)
	b[7] = byte(p.Op)
	copy(b[8:14], p.SenderMAC[:])
	ipv4.PutAddr(b[14:18], p.SenderIP)
	copy(b[18:24], p.TargetMAC[:])
	ipv4.PutAddr(b[24:28], p.TargetIP)
	return b
}

// Unmarshal parses a wire-format packet.
func Unmarshal(b []byte) (Packet, error) {
	if len(b) < PacketLen {
		return Packet{}, ErrTruncated
	}
	var p Packet
	p.Op = uint16(b[6])<<8 | uint16(b[7])
	copy(p.SenderMAC[:], b[8:14])
	p.SenderIP = ipv4.GetAddr(b[14:18])
	copy(p.TargetMAC[:], b[18:24])
	p.TargetIP = ipv4.GetAddr(b[24:28])
	return p, nil
}

// Config tunes the module.
type Config struct {
	// EntryTTL is how long cache entries stay valid. Default 20 minutes
	// (BSD heritage); the paper's measurements keep caches warm.
	EntryTTL time.Duration
	// RequestTimeout is the per-attempt resolution timeout. Default 1 s.
	RequestTimeout time.Duration
	// MaxRetries bounds resolution attempts. Default 3.
	MaxRetries int
	// ProcessingDelay is how long after an ARP packet arrives that this
	// station's table reflects it; it models ARP handling latency in a
	// router's slow path and contributes to the paper's takeover window T.
	ProcessingDelay time.Duration
}

func (c Config) withDefaults() Config {
	if c.EntryTTL == 0 {
		c.EntryTTL = 20 * time.Minute
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	return c
}

type entry struct {
	mac     ethernet.MAC
	expires time.Duration
}

type pending struct {
	callbacks []func(ethernet.MAC, error)
	attempts  int
	timer     sim.Timer
}

// Module is one interface's ARP engine: a cache plus resolver.
type Module struct {
	sched *sim.Scheduler
	nic   *ethernet.NIC
	cfg   Config

	// owns reports whether this station answers requests for ip on this
	// interface. It is a func so IP takeover changes behavior immediately.
	owns func(ipv4.Addr) bool
	// srcIP supplies the sender address for outgoing requests.
	srcIP func() ipv4.Addr

	// filter, when set, is consulted before a received sender binding is
	// learned or refreshed; a false verdict discards the binding and counts
	// it. It models ARP-announce authentication: the paper's IP takeover is
	// a gratuitous ARP, which is exactly what a rogue station forges to
	// hijack a live connection, so a hardened deployment pins each
	// protected address to the MACs of its replica group.
	filter   func(ip ipv4.Addr, mac ethernet.MAC) bool
	rejected int64

	cache   map[ipv4.Addr]entry
	waiting map[ipv4.Addr]*pending
}

// New creates a module bound to nic. owns and srcIP must be non-nil.
func New(sched *sim.Scheduler, nic *ethernet.NIC, cfg Config,
	owns func(ipv4.Addr) bool, srcIP func() ipv4.Addr) *Module {
	return &Module{
		sched:   sched,
		nic:     nic,
		cfg:     cfg.withDefaults(),
		owns:    owns,
		srcIP:   srcIP,
		cache:   make(map[ipv4.Addr]entry),
		waiting: make(map[ipv4.Addr]*pending),
	}
}

// Lookup consults the cache without generating traffic.
func (m *Module) Lookup(ip ipv4.Addr) (ethernet.MAC, bool) {
	e, ok := m.cache[ip]
	if !ok || m.sched.Now() >= e.expires {
		return ethernet.MAC{}, false
	}
	return e.mac, true
}

// Seed installs a static cache entry (used to pre-warm caches, as the
// paper's measurements do: "We made sure that the MAC addresses of all
// nodes were present in the ARP caches").
func (m *Module) Seed(ip ipv4.Addr, mac ethernet.MAC) {
	m.cache[ip] = entry{mac: mac, expires: m.sched.Now() + m.cfg.EntryTTL}
}

// Flush discards the cache.
func (m *Module) Flush() { m.cache = make(map[ipv4.Addr]entry) }

// SetBindingFilter installs f, consulted before the module learns or
// refreshes a sender binding from a received ARP packet. A nil filter (the
// default) accepts every binding, which is classic unauthenticated ARP.
// Seeded entries bypass the filter: they model static configuration.
func (m *Module) SetBindingFilter(f func(ip ipv4.Addr, mac ethernet.MAC) bool) {
	m.filter = f
}

// RejectedBindings returns how many sender bindings the filter refused.
func (m *Module) RejectedBindings() int64 { return m.rejected }

// AuthorizedBindings builds a binding filter that pins each listed address
// to an allowed MAC set; addresses not listed remain unrestricted. The
// scenario builder authorizes every replica's MAC for the service address,
// so the legitimate takeover announce still rebinds it while a rogue
// station's forged gratuitous ARP is rejected.
func AuthorizedBindings(auth map[ipv4.Addr][]ethernet.MAC) func(ipv4.Addr, ethernet.MAC) bool {
	return func(ip ipv4.Addr, mac ethernet.MAC) bool {
		macs, ok := auth[ip]
		if !ok {
			return true
		}
		for _, m := range macs {
			if m == mac {
				return true
			}
		}
		return false
	}
}

// Resolve invokes cb with the MAC for ip, sending requests as needed. The
// callback runs inside the event loop, possibly synchronously on cache hit.
func (m *Module) Resolve(ip ipv4.Addr, cb func(ethernet.MAC, error)) {
	if mac, ok := m.Lookup(ip); ok {
		cb(mac, nil)
		return
	}
	if w, ok := m.waiting[ip]; ok {
		w.callbacks = append(w.callbacks, cb)
		return
	}
	w := &pending{callbacks: []func(ethernet.MAC, error){cb}}
	m.waiting[ip] = w
	m.sendRequest(ip, w)
}

func (m *Module) sendRequest(ip ipv4.Addr, w *pending) {
	w.attempts++
	pkt := Packet{
		Op:        OpRequest,
		SenderMAC: m.nic.MAC(),
		SenderIP:  m.srcIP(),
		TargetIP:  ip,
	}
	if err := m.nic.Send(ethernet.Frame{
		Dst:     ethernet.Broadcast,
		Type:    ethernet.TypeARP,
		Payload: Marshal(pkt),
	}); err != nil {
		m.fail(ip, w, err)
		return
	}
	w.timer = m.sched.After(m.cfg.RequestTimeout, "arp.timeout", func() {
		if w.attempts >= m.cfg.MaxRetries {
			m.fail(ip, w, fmt.Errorf("%w: %s after %d attempts", ErrUnresolvable, ip, w.attempts))
			return
		}
		m.sendRequest(ip, w)
	})
}

func (m *Module) fail(ip ipv4.Addr, w *pending, err error) {
	delete(m.waiting, ip)
	for _, cb := range w.callbacks {
		cb(ethernet.MAC{}, err)
	}
}

// Announce broadcasts a gratuitous ARP claiming ip for this NIC. This is
// step 5 of the paper's primary-failure procedure: the secondary "takes
// over the IP address of the primary server".
func (m *Module) Announce(ip ipv4.Addr) error {
	pkt := Packet{
		Op:        OpRequest,
		SenderMAC: m.nic.MAC(),
		SenderIP:  ip,
		TargetIP:  ip,
	}
	return m.nic.Send(ethernet.Frame{
		Dst:     ethernet.Broadcast,
		Type:    ethernet.TypeARP,
		Payload: Marshal(pkt),
	})
}

// HandleFrame processes a received ARP frame, releasing its buffer: the
// parse copies every field out of the payload.
func (m *Module) HandleFrame(f ethernet.Frame) {
	pkt, err := Unmarshal(f.Payload)
	if f.Buf != nil {
		f.Buf.Release()
	}
	if err != nil {
		return
	}
	// Learn/refresh the sender binding. The ProcessingDelay models slow-path
	// table maintenance (notably in the router during IP takeover). The
	// binding filter runs at receive time: an unauthorized announce must not
	// occupy a slow-path slot either.
	if !pkt.SenderIP.IsZero() && m.filter != nil && !m.filter(pkt.SenderIP, pkt.SenderMAC) {
		m.rejected++
	} else if !pkt.SenderIP.IsZero() {
		update := func() {
			m.cache[pkt.SenderIP] = entry{
				mac:     pkt.SenderMAC,
				expires: m.sched.Now() + m.cfg.EntryTTL,
			}
			if w, ok := m.waiting[pkt.SenderIP]; ok {
				delete(m.waiting, pkt.SenderIP)
				w.timer.Stop()
				for _, cb := range w.callbacks {
					cb(pkt.SenderMAC, nil)
				}
			}
		}
		if m.cfg.ProcessingDelay > 0 {
			m.sched.After(m.cfg.ProcessingDelay, "arp.update", update)
		} else {
			update()
		}
	}
	if pkt.Op == OpRequest && m.owns(pkt.TargetIP) && pkt.SenderIP != pkt.TargetIP {
		reply := Packet{
			Op:        OpReply,
			SenderMAC: m.nic.MAC(),
			SenderIP:  pkt.TargetIP,
			TargetMAC: pkt.SenderMAC,
			TargetIP:  pkt.SenderIP,
		}
		_ = m.nic.Send(ethernet.Frame{
			Dst:     pkt.SenderMAC,
			Type:    ethernet.TypeARP,
			Payload: Marshal(reply),
		})
	}
}
