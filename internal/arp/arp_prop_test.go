package arp_test

import (
	"testing"
	"time"

	"tcpfailover/internal/arp"
	"tcpfailover/internal/ethernet"
	"tcpfailover/internal/fault"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/sim"
)

// Property test for the ARP binding filter: 1000 seeded trials, each a
// forged gratuitous announce claiming the victim's address for a random
// rogue MAC. Without the filter every announce rebinds the victim's cache
// entry (the gratuitous-ARP takeover that makes the paper's failover work
// is equally available to an attacker); with AuthorizedBindings installed
// every rogue binding is refused and the cache keeps the true MAC.
func TestPropARPBindingFilter(t *testing.T) {
	const trials = 1000
	for _, tc := range []struct {
		name   string
		filter bool
	}{
		{"off-attack-succeeds", false},
		{"on-attack-defeated", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sched := sim.New(1)
			seg := ethernet.NewSegment(sched, ethernet.Config{})
			victim := newStation(sched, seg, macB, ipB, arp.Config{})
			if tc.filter {
				victim.mod.SetBindingFilter(arp.AuthorizedBindings(
					map[ipv4.Addr][]ethernet.MAC{ipA: {macA}, ipB: {macB}}))
			}
			victim.mod.Seed(ipA, macA)
			rogue := seg.Attach(ethernet.MAC{2, 0, 0, 0, 0, 0xee})
			rogue.SetHandler(func(f ethernet.Frame) {
				if f.Buf != nil {
					f.Buf.Release()
				}
			})

			rng := fault.NewRand(0xa49).Split("arp")
			hijacked := 0
			for i := 0; i < trials; i++ {
				mac := ethernet.MAC{2, 1, byte(rng.Uint64()), byte(rng.Uint64()), byte(rng.Uint64()), byte(rng.Uint64())}
				announce := arp.Marshal(arp.Packet{
					Op: arp.OpRequest, SenderMAC: mac, SenderIP: ipA,
					TargetMAC: ethernet.MAC{}, TargetIP: ipA,
				})
				if err := rogue.Send(ethernet.Frame{
					Dst: ethernet.Broadcast, Type: ethernet.TypeARP, Payload: announce,
				}); err != nil {
					t.Fatal(err)
				}
				if err := sched.RunFor(10 * time.Millisecond); err != nil {
					t.Fatal(err)
				}
				if got, ok := victim.mod.Lookup(ipA); ok && got == mac {
					hijacked++
					victim.mod.Seed(ipA, macA) // restore for the next trial
				} else if ok && got != macA {
					t.Fatalf("trial %d: cache bound to a third MAC %v", i, got)
				}
			}
			if !tc.filter {
				if hijacked != trials {
					t.Errorf("unfiltered: %d/%d rogue announces rebound the cache, want all", hijacked, trials)
				}
				if r := victim.mod.RejectedBindings(); r != 0 {
					t.Errorf("unfiltered module rejected %d bindings", r)
				}
			} else {
				if hijacked != 0 {
					t.Errorf("filtered: %d/%d rogue announces rebound the cache", hijacked, trials)
				}
				if r := victim.mod.RejectedBindings(); r != trials {
					t.Errorf("rejected = %d, want %d", r, trials)
				}
			}
		})
	}
}
