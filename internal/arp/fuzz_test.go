package arp_test

import (
	"testing"
	"time"

	"tcpfailover/internal/arp"
	"tcpfailover/internal/ethernet"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/sim"
)

// FuzzARPAnnounce feeds attacker-crafted ARP bytes — malformed, truncated,
// or well-formed forged announces — straight into a filtered module's
// receive path. Two invariants must hold for every input: the handler
// never panics, and a module protected by AuthorizedBindings never caches
// an unauthorized MAC for a protected address, no matter how the announce
// is encoded.
func FuzzARPAnnounce(f *testing.F) {
	rogueMAC := ethernet.MAC{2, 0, 0, 0, 0, 0xee}
	// A forged gratuitous announce, a truncated packet, and a reply variant.
	f.Add(arp.Marshal(arp.Packet{Op: arp.OpRequest, SenderMAC: rogueMAC, SenderIP: ipA, TargetIP: ipA}))
	f.Add(arp.Marshal(arp.Packet{Op: arp.OpReply, SenderMAC: rogueMAC, SenderIP: ipA, TargetMAC: macB, TargetIP: ipB}))
	f.Add([]byte{0, 1, 8, 0, 6, 4, 0, 1})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		sched := sim.New(1)
		seg := ethernet.NewSegment(sched, ethernet.Config{})
		victim := newStation(sched, seg, macB, ipB, arp.Config{})
		victim.mod.SetBindingFilter(arp.AuthorizedBindings(
			map[ipv4.Addr][]ethernet.MAC{ipA: {macA}, ipB: {macB}}))
		victim.mod.Seed(ipA, macA)

		victim.mod.HandleFrame(ethernet.Frame{
			Src: rogueMAC, Dst: ethernet.Broadcast, Type: ethernet.TypeARP,
			Payload: append([]byte(nil), data...),
		})
		if err := sched.RunFor(10 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		if got, ok := victim.mod.Lookup(ipA); ok && got != macA {
			t.Fatalf("filtered module rebound %v to %v", ipA, got)
		}
	})
}
