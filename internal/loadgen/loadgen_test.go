package loadgen

import (
	"math"
	"strings"
	"testing"
	"time"

	"tcpfailover/internal/fault"
)

// --- Arrival-process properties ------------------------------------------------

// drawArrivals collects every arrival of a process in [0, horizon).
func drawArrivals(p Process, horizon time.Duration, seed uint64) []time.Duration {
	r := fault.NewRand(seed)
	var out []time.Duration
	t := time.Duration(0)
	for {
		t = p.Next(t, r)
		if t >= horizon {
			return out
		}
		out = append(out, t)
	}
}

// TestPoissonMeanAndDispersion checks the two defining properties of a
// Poisson process on disjoint unit bins: the count mean matches the rate and
// the variance/mean ratio (index of dispersion) is 1.
func TestPoissonMeanAndDispersion(t *testing.T) {
	const rate = 50.0
	const bins = 400
	horizon := time.Duration(bins) * time.Second
	arr := drawArrivals(Poisson{Rate: rate}, horizon, 42)

	counts := make([]float64, bins)
	for _, a := range arr {
		counts[int(a/time.Second)]++
	}
	var sum, sumSq float64
	for _, c := range counts {
		sum += c
		sumSq += c * c
	}
	mean := sum / bins
	variance := sumSq/bins - mean*mean

	if math.Abs(mean-rate)/rate > 0.03 {
		t.Errorf("per-second count mean = %.2f, want ~%g", mean, rate)
	}
	if d := variance / mean; d < 0.85 || d > 1.15 {
		t.Errorf("index of dispersion = %.3f, want ~1 (Poisson)", d)
	}
	for i := 1; i < len(arr); i++ {
		if arr[i] <= arr[i-1] {
			t.Fatalf("arrivals not strictly increasing at %d: %v then %v", i, arr[i-1], arr[i])
		}
	}
}

// TestFlashCrowdBurstCounts checks that the thinned inhomogeneous process
// concentrates arrivals in the burst windows at the configured peak ratio,
// and that MeanRate matches the realized total.
func TestFlashCrowdBurstCounts(t *testing.T) {
	f := FlashCrowd{Base: 40, Peak: 8, Period: 2 * time.Second, Burst: 250 * time.Millisecond}
	const cycles = 200
	horizon := time.Duration(cycles) * f.Period
	arr := drawArrivals(f, horizon, 7)

	var inBurst, outBurst float64
	for _, a := range arr {
		if a%f.Period < f.Burst {
			inBurst++
		} else {
			outBurst++
		}
	}
	// Expected counts: burst windows cover 1/8 of the time at 8x the base
	// rate, so they hold 8/15 of all arrivals.
	burstRate := inBurst / (float64(cycles) * f.Burst.Seconds())
	baseRate := outBurst / (float64(cycles) * (f.Period - f.Burst).Seconds())
	if r := burstRate / baseRate; r < 6.5 || r > 9.5 {
		t.Errorf("burst/base realized rate ratio = %.2f, want ~%g", r, f.Peak)
	}
	realized := float64(len(arr)) / horizon.Seconds()
	if want := f.MeanRate(); math.Abs(realized-want)/want > 0.05 {
		t.Errorf("realized mean rate = %.2f/s, MeanRate() = %.2f/s", realized, want)
	}
}

// TestDiurnalTrough checks the sinusoid: the quarter-period around the trough
// must see far fewer arrivals than the quarter around the crest.
func TestDiurnalTrough(t *testing.T) {
	d := Diurnal{Mean: 100, Amplitude: 0.8, Period: 4 * time.Second}
	const cycles = 100
	arr := drawArrivals(d, time.Duration(cycles)*d.Period, 3)

	var crest, trough float64
	for _, a := range arr {
		switch phase := a % d.Period; {
		case phase < d.Period/2:
			crest++ // sin > 0
		default:
			trough++ // sin < 0
		}
	}
	// Half-period integrals: Mean*(T/2) ± Amplitude*Mean*T/pi.
	want := (1 + 2*d.Amplitude/math.Pi) / (1 - 2*d.Amplitude/math.Pi)
	if r := crest / trough; math.Abs(r-want)/want > 0.10 {
		t.Errorf("crest/trough arrival ratio = %.2f, want ~%.2f", r, want)
	}
}

// --- Sampler properties --------------------------------------------------------

// TestLognormalMedian checks the parameterization: the sample median must sit
// at the configured median.
func TestLognormalMedian(t *testing.T) {
	l := Lognormal{Median: 4096, Sigma: 1.0}
	r := fault.NewRand(11)
	const n = 200000
	below := 0
	for range n {
		if l.Sample(r) < l.Median {
			below++
		}
	}
	if f := float64(below) / n; f < 0.48 || f > 0.52 {
		t.Errorf("fraction below median = %.3f, want ~0.5", f)
	}
}

// TestParetoTailIndexRecovery fits the Hill estimator to Pareto samples and
// checks it recovers the configured tail index — the property that makes the
// zoo's tails genuinely heavy rather than merely skewed.
func TestParetoTailIndexRecovery(t *testing.T) {
	p := Pareto{Scale: 1000, Alpha: 1.3}
	r := fault.NewRand(5)
	const n = 100000
	// For an exact Pareto the Hill estimator over all samples is the MLE:
	// alpha-hat = n / sum(log(x_i/scale)).
	var logSum float64
	minSeen := int64(math.MaxInt64)
	for range n {
		v := p.Sample(r)
		if v < minSeen {
			minSeen = v
		}
		logSum += math.Log(float64(v) / float64(p.Scale))
	}
	alphaHat := n / logSum
	if math.Abs(alphaHat-p.Alpha)/p.Alpha > 0.03 {
		t.Errorf("Hill/MLE tail index = %.3f, want ~%g", alphaHat, p.Alpha)
	}
	if minSeen < p.Scale {
		t.Errorf("sample %d below scale %d", minSeen, p.Scale)
	}
}

// TestMixTailFraction checks the two-piece model draws from the tail at the
// configured probability.
func TestMixTailFraction(t *testing.T) {
	m := Mix{Body: Fixed(1), Tail: Fixed(1 << 30), TailProb: 0.05}
	r := fault.NewRand(9)
	const n = 100000
	tails := 0
	for range n {
		if m.Sample(r) > 1 {
			tails++
		}
	}
	if f := float64(tails) / n; f < 0.043 || f > 0.057 {
		t.Errorf("tail fraction = %.4f, want ~0.05", f)
	}
}

// TestGeometricMean checks the requests-per-session sampler: support starts
// at 1 and the sample mean matches.
func TestGeometricMean(t *testing.T) {
	g := Geometric{Mean: 3}
	r := fault.NewRand(13)
	const n = 200000
	var sum int64
	for range n {
		v := g.Sample(r)
		if v < 1 {
			t.Fatalf("geometric sample %d < 1", v)
		}
		sum += v
	}
	if mean := float64(sum) / n; math.Abs(mean-3) > 0.05 {
		t.Errorf("sample mean = %.3f, want ~3", mean)
	}
}

// TestClampBounds checks clamping.
func TestClampBounds(t *testing.T) {
	c := Clamp{S: Pareto{Scale: 10, Alpha: 0.5}, Min: 64, Max: 1024}
	r := fault.NewRand(17)
	for range 10000 {
		if v := c.Sample(r); v < c.Min || v > c.Max {
			t.Fatalf("clamped sample %d outside [%d, %d]", v, c.Min, c.Max)
		}
	}
}

// --- Determinism ---------------------------------------------------------------

// TestArrivalsByteIdentical pins the draw sequences: the same seed must
// reproduce the same arrival schedule and the same sampled sizes, draw for
// draw — the property the sharded and multi-worker determinism gates build on.
func TestArrivalsByteIdentical(t *testing.T) {
	for _, name := range ZooNames() {
		spec, err := Zoo(name, 80)
		if err != nil {
			t.Fatal(err)
		}
		a := drawArrivals(spec.Arrivals, 20*time.Second, 99)
		b := drawArrivals(spec.Arrivals, 20*time.Second, 99)
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d arrivals from the same seed", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: arrival %d differs: %v vs %v", name, i, a[i], b[i])
			}
		}
		if len(a) == 0 {
			t.Fatalf("%s: no arrivals in 20s at 80/s", name)
		}

		r1, r2 := fault.NewRand(123), fault.NewRand(123)
		for i := range 10000 {
			if v1, v2 := spec.Session.Sizes.Sample(r1), spec.Session.Sizes.Sample(r2); v1 != v2 {
				t.Fatalf("%s: size draw %d differs: %d vs %d", name, i, v1, v2)
			}
		}
	}
}

// TestZooUnknown checks the error path lists the valid names.
func TestZooUnknown(t *testing.T) {
	if _, err := Zoo("web", 10); err != nil {
		t.Fatalf("web: %v", err)
	}
	_, err := Zoo("nope", 10)
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	for _, name := range ZooNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list %q", err, name)
		}
	}
	if _, err := Zoo("web", 0); err == nil {
		t.Fatal("zero offered load accepted")
	}
}
