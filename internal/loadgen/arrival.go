package loadgen

import (
	"math"
	"time"

	"tcpfailover/internal/fault"
)

// Arrival processes. A Process yields successive arrival instants; the
// generator asks for the next arrival strictly after the current one, so a
// process is a pure function of (previous arrival, its private fault.Rand
// stream) and the whole arrival schedule is byte-identical for a fixed seed
// regardless of bench worker count or shard partition.

// Process yields the next arrival instant strictly after now.
type Process interface {
	Next(now time.Duration, r *fault.Rand) time.Duration
}

// expDur draws an exponential interarrival for a rate in events/second.
// The +1ns floor keeps successive arrivals strictly ordered.
func expDur(r *fault.Rand, rate float64) time.Duration {
	d := time.Duration(-math.Log(1-r.Float64()) / rate * float64(time.Second))
	if d <= 0 {
		return time.Nanosecond
	}
	return d
}

// Poisson is a homogeneous Poisson process: independent exponential
// interarrivals at Rate events/second. The memoryless baseline every
// open-loop experiment starts from.
type Poisson struct {
	Rate float64 // arrivals per second, must be positive
}

// Next returns the next arrival after now.
func (p Poisson) Next(now time.Duration, r *fault.Rand) time.Duration {
	return now + expDur(r, p.Rate)
}

// RateFunc is an inhomogeneous Poisson process with intensity Rate(t),
// sampled by Lewis–Shedler thinning against the envelope Max: candidates
// arrive at the constant envelope rate and survive with probability
// Rate(t)/Max. Rate must never exceed Max; Max must be positive.
type RateFunc struct {
	Max  float64
	Rate func(t time.Duration) float64
}

// Next returns the next accepted arrival after now.
func (p RateFunc) Next(now time.Duration, r *fault.Rand) time.Duration {
	t := now
	for {
		t += expDur(r, p.Max)
		if r.Float64()*p.Max <= p.Rate(t) {
			return t
		}
	}
}

// FlashCrowd models a steady baseline punctuated by recurring bursts: every
// Period, the rate jumps to Peak x Base for Burst, then falls back — the
// load-balancer-flap / thundering-herd shape where open-loop failover pain
// concentrates.
type FlashCrowd struct {
	Base   float64       // off-burst arrivals per second
	Peak   float64       // burst multiplier (>= 1)
	Period time.Duration // burst spacing
	Burst  time.Duration // burst length (< Period)
}

// RateAt returns the instantaneous rate.
func (f FlashCrowd) RateAt(t time.Duration) float64 {
	if t%f.Period < f.Burst {
		return f.Base * f.Peak
	}
	return f.Base
}

// MeanRate returns the time-averaged rate, used to normalize offered load
// across workloads.
func (f FlashCrowd) MeanRate() float64 {
	frac := float64(f.Burst) / float64(f.Period)
	return f.Base * (1 + (f.Peak-1)*frac)
}

// Next thins against the burst-peak envelope.
func (f FlashCrowd) Next(now time.Duration, r *fault.Rand) time.Duration {
	return RateFunc{Max: f.Base * math.Max(f.Peak, 1), Rate: f.RateAt}.Next(now, r)
}

// Diurnal is a sinusoidal ramp around a mean rate:
// rate(t) = Mean * (1 + Amplitude * sin(2 pi t / Period)). A day compressed
// into simulation-scale Periods, so a run sweeps trough and peak load.
type Diurnal struct {
	Mean      float64       // average arrivals per second
	Amplitude float64       // relative swing in [0, 1)
	Period    time.Duration // one full cycle
}

// RateAt returns the instantaneous rate.
func (d Diurnal) RateAt(t time.Duration) float64 {
	return d.Mean * (1 + d.Amplitude*math.Sin(2*math.Pi*float64(t)/float64(d.Period)))
}

// Next thins against the crest envelope.
func (d Diurnal) Next(now time.Duration, r *fault.Rand) time.Duration {
	return RateFunc{Max: d.Mean * (1 + d.Amplitude), Rate: d.RateAt}.Next(now, r)
}
