package loadgen

import (
	"math"

	"tcpfailover/internal/fault"
)

// Flow-size and count samplers. Production object-size distributions are
// heavy-tailed: most responses are small, a thin tail of huge ones carries
// much of the bytes. The zoo composes a lognormal body with a Pareto tail,
// the standard two-piece model of web transfer sizes.

// Sampler draws sizes (or counts) from a private fault.Rand stream.
type Sampler interface {
	Sample(r *fault.Rand) int64
}

// Fixed always returns its value.
type Fixed int64

// Sample returns the fixed value.
func (f Fixed) Sample(*fault.Rand) int64 { return int64(f) }

// Lognormal draws exp(Normal) sizes parameterized by the distribution's
// median (= exp(mu)) and log-space sigma. The normal variate comes from a
// Box–Muller transform that always consumes exactly two uniforms.
type Lognormal struct {
	Median int64
	Sigma  float64
}

// Sample draws one size.
func (l Lognormal) Sample(r *fault.Rand) int64 {
	z := normFloat(r)
	return int64(float64(l.Median) * math.Exp(l.Sigma*z))
}

// normFloat is a standard normal via Box–Muller (two uniforms per call, the
// second consumed even though only the cosine branch is used, so the draw
// count per sample is constant).
func normFloat(r *fault.Rand) float64 {
	u1 := r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(1-u1)) * math.Cos(2*math.Pi*u2)
}

// Pareto draws from a Pareto distribution with scale xm (the minimum) and
// tail index Alpha: P(X > x) = (xm/x)^Alpha. Alpha <= 1 has infinite mean —
// legitimate for modelling, but the zoo clamps such tails.
type Pareto struct {
	Scale int64
	Alpha float64
}

// Sample draws one size by inversion.
func (p Pareto) Sample(r *fault.Rand) int64 {
	u := r.Float64()
	return int64(float64(p.Scale) * math.Pow(1-u, -1/p.Alpha))
}

// Mix draws from Tail with probability TailProb, otherwise from Body — the
// two-piece body+tail model.
type Mix struct {
	Body     Sampler
	Tail     Sampler
	TailProb float64
}

// Sample draws one size.
func (m Mix) Sample(r *fault.Rand) int64 {
	if r.Float64() < m.TailProb {
		return m.Tail.Sample(r)
	}
	return m.Body.Sample(r)
}

// Clamp bounds an underlying sampler to [Min, Max], keeping heavy tails
// from exceeding what a finite-bandwidth run can carry.
type Clamp struct {
	S        Sampler
	Min, Max int64
}

// Sample draws one bounded size.
func (c Clamp) Sample(r *fault.Rand) int64 {
	v := c.S.Sample(r)
	if v < c.Min {
		return c.Min
	}
	if v > c.Max {
		return c.Max
	}
	return v
}

// Geometric draws counts from {1, 2, ...} with the given mean — the
// requests-per-keep-alive-connection distribution (each request is the
// "success" trial that may end the session).
type Geometric struct {
	Mean float64
}

// Sample draws one count.
func (g Geometric) Sample(r *fault.Rand) int64 {
	if g.Mean <= 1 {
		return 1
	}
	p := 1 / g.Mean
	u := r.Float64()
	k := 1 + int64(math.Log(1-u)/math.Log(1-p))
	if k < 1 {
		return 1
	}
	return k
}
