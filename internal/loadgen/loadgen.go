// Package loadgen is a deterministic open-loop load generator driven by the
// simulation scheduler. Sessions arrive on a schedule drawn from an arrival
// process — they do not wait for earlier sessions to finish — so offered
// load is independent of service quality and a crashed primary faces the
// same client pressure a production frontend would: arrivals keep coming
// during the outage and the backlog is visible as client-side latency, not
// as a politely throttled request rate.
//
// Determinism: all randomness flows from one splittable fault.Rand. The
// arrival schedule is drawn from a private child stream, and every session
// pre-draws its whole shape (bulk or keep-alive, request count, all sizes)
// from its own child stream at the arrival instant. No random draw ever
// happens inside a completion or timer callback, so the draw sequence is a
// pure function of the seed — byte-identical across bench worker counts and
// shard partitions.
package loadgen

import (
	"time"

	"tcpfailover/internal/apps"
	"tcpfailover/internal/fault"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/metrics"
	"tcpfailover/internal/sim"
	"tcpfailover/internal/tcp"
)

// Config wires a Generator to one client stack and one service address.
type Config struct {
	Sched *sim.Scheduler
	Stack *tcp.Stack
	Addr  ipv4.Addr
	Port  uint16

	// Spec is the workload (arrival process + session mix), usually from Zoo.
	Spec Spec

	// Rand seeds all generator randomness; the Generator splits private
	// child streams and never draws from it directly after construction.
	Rand *fault.Rand

	// Stop: no new sessions arrive at or after this instant. In-flight
	// sessions run to completion (or death).
	Stop time.Duration

	// MeasureFrom: only requests issued at or after this instant count in
	// Stats (warmup exclusion). Zero measures everything.
	MeasureFrom time.Duration
}

// Stats is the client-visible outcome of a run. Counters cover measured
// requests only (issued in [MeasureFrom, Stop) windows); Arrivals and
// DialErrors cover the whole run.
type Stats struct {
	// Arrivals counts sessions the arrival process produced.
	Arrivals int64
	// DialErrors counts sessions that failed at Dial (ephemeral-port
	// exhaustion under churn) — an SLO failure, not a harness error.
	DialErrors int64

	// Requests counts measured requests issued; Completed, those whose last
	// body byte arrived; Failed, those whose connection died first.
	Requests  int64
	Completed int64
	Failed    int64

	// BytesIn counts verified body bytes delivered for measured requests.
	BytesIn int64

	// Lat holds client-visible request latency (issue instant to last body
	// byte). A session's first request is issued at the arrival instant, so
	// its latency includes connection setup — and, during failover, the
	// whole takeover stall.
	Lat metrics.LogHistogram
}

// Outstanding reports measured requests still in flight (issued, neither
// completed nor failed) — sessions truncated by the run horizon.
func (s *Stats) Outstanding() int64 { return s.Requests - s.Completed - s.Failed }

// Generator churns open-loop sessions against one service address.
type Generator struct {
	cfg   Config
	arrR  *fault.Rand // arrival schedule draws
	sessR *fault.Rand // per-session child-stream derivation

	Stats Stats
}

// New builds a Generator; call Start to schedule the first arrival.
func New(cfg Config) *Generator {
	return &Generator{
		cfg:   cfg,
		arrR:  cfg.Rand.Split("loadgen.arrivals"),
		sessR: cfg.Rand.Split("loadgen.sessions"),
	}
}

// Start schedules the arrival process beginning strictly after at.
func (g *Generator) Start(at time.Duration) {
	g.scheduleNext(at)
}

func (g *Generator) scheduleNext(now time.Duration) {
	next := g.cfg.Spec.Arrivals.Next(now, g.arrR)
	if next >= g.cfg.Stop {
		return
	}
	g.cfg.Sched.At(next, "loadgen.arrival", func() {
		g.Stats.Arrivals++
		g.launch()
		g.scheduleNext(next)
	})
}

// session is one pre-drawn keep-alive (or bulk) session in flight.
type session struct {
	g     *Generator
	cl    *apps.HTTPClient
	sizes []int64
	next  int // index of the next request to issue

	issuedAt time.Duration
	measured bool
	inFlight bool
	dead     bool
}

// launch pre-draws the session's whole shape, dials, and issues the first
// request immediately (it rides the handshake).
func (g *Generator) launch() {
	sr := g.sessR.Split("session")
	sp := g.cfg.Spec.Session
	var sizes []int64
	if sp.BulkProb > 0 && sr.Float64() < sp.BulkProb {
		sizes = []int64{sp.BulkSizes.Sample(sr)}
	} else {
		n := sp.Requests.Sample(sr)
		sizes = make([]int64, n)
		for i := range sizes {
			sizes[i] = sp.Sizes.Sample(sr)
		}
	}

	now := g.cfg.Sched.Now()
	measured := now >= g.cfg.MeasureFrom
	cl, err := apps.NewHTTPClient(g.cfg.Stack, g.cfg.Sched, g.cfg.Addr, g.cfg.Port)
	if err != nil {
		g.Stats.DialErrors++
		if measured {
			// The whole planned session is refused service.
			g.Stats.Requests += int64(len(sizes))
			g.Stats.Failed += int64(len(sizes))
		}
		return
	}

	s := &session{g: g, cl: cl, sizes: sizes}
	cl.OnClosed = s.onClosed
	s.issue()
}

// issue sends request s.next and schedules the think-gapped follow-up on
// completion.
func (s *session) issue() {
	g := s.g
	i := s.next
	s.next++
	s.issuedAt = g.cfg.Sched.Now()
	s.measured = s.issuedAt >= g.cfg.MeasureFrom
	s.inFlight = true
	if s.measured {
		g.Stats.Requests++
	}
	size := s.sizes[i]
	last := s.next == len(s.sizes)
	s.cl.Get(size, last, func() {
		s.inFlight = false
		if s.measured {
			g.Stats.Completed++
			g.Stats.BytesIn += size
			g.Stats.Lat.ObserveDuration(g.cfg.Sched.Now() - s.issuedAt)
		}
		if last || s.dead {
			return
		}
		think := g.cfg.Spec.Session.Think
		g.cfg.Sched.After(think, "loadgen.think", func() {
			if !s.dead {
				s.issue()
			}
		})
	})
}

// onClosed accounts a request that dies on the wire. A clean server close
// after the last response also lands here; only an in-flight request is a
// failure.
func (s *session) onClosed(error) {
	s.dead = true
	if s.inFlight {
		s.inFlight = false
		if s.measured {
			s.g.Stats.Failed++
		}
	}
}
