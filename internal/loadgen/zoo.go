package loadgen

import (
	"fmt"
	"sort"
	"time"
)

// The workload zoo: named production traffic shapes, each parameterized
// only by its mean offered load so experiment cells across workloads are
// comparable. Every workload shares the same churn mix (short keep-alive
// HTTP sessions, a slice of long bulk transfers, heavy-tailed sizes) and
// differs in its arrival process.

// Session describes the per-connection churn: how many requests a
// keep-alive session issues, how large each response is, the think gap
// between them, and the bulk-transfer slice of the arrival mix.
type Session struct {
	// Requests samples requests per keep-alive session (>= 1).
	Requests Sampler
	// Sizes samples the response body bytes of each keep-alive request.
	Sizes Sampler
	// Think is the gap between a response's last byte and the next request.
	Think time.Duration
	// BulkProb is the probability an arrival is instead one long bulk GET.
	BulkProb float64
	// BulkSizes samples bulk transfer sizes.
	BulkSizes Sampler
}

// Spec is one workload: an arrival process plus the session mix it feeds.
type Spec struct {
	Arrivals Process
	Session  Session
}

// webSession is the shared churn mix: geometric keep-alive sessions
// (mean 3 requests), lognormal-body/Pareto-tail response sizes (median
// 4 KB, 5% tail draws from a 32 KB-scale alpha=1.3 Pareto), 10 ms think
// time, and 5% of arrivals being 128 KB-scale alpha=1.5 bulk pulls.
func webSession() Session {
	return Session{
		Requests: Geometric{Mean: 3},
		Sizes: Clamp{
			S: Mix{
				Body:     Lognormal{Median: 4096, Sigma: 1.0},
				Tail:     Pareto{Scale: 32 * 1024, Alpha: 1.3},
				TailProb: 0.05,
			},
			Min: 64, Max: 1 << 20,
		},
		Think:    10 * time.Millisecond,
		BulkProb: 0.05,
		BulkSizes: Clamp{
			S:   Pareto{Scale: 128 * 1024, Alpha: 1.5},
			Min: 128 * 1024, Max: 2 << 20,
		},
	}
}

// zooBuilders maps workload names to constructors taking the mean offered
// load in sessions/second.
var zooBuilders = map[string]func(rate float64) Spec{
	"web": func(rate float64) Spec {
		return Spec{Arrivals: Poisson{Rate: rate}, Session: webSession()}
	},
	"flash": func(rate float64) Spec {
		// Burst 250 ms out of every 2 s at 8x; scale the baseline so the
		// time-averaged rate equals the requested one.
		f := FlashCrowd{Base: 1, Peak: 8, Period: 2 * time.Second, Burst: 250 * time.Millisecond}
		f.Base = rate / f.MeanRate()
		return Spec{Arrivals: f, Session: webSession()}
	},
	"diurnal": func(rate float64) Spec {
		return Spec{
			Arrivals: Diurnal{Mean: rate, Amplitude: 0.8, Period: 4 * time.Second},
			Session:  webSession(),
		}
	},
}

// Zoo returns the named workload at the given mean offered load
// (sessions/second). Valid names: web, flash, diurnal.
func Zoo(name string, rate float64) (Spec, error) {
	if rate <= 0 {
		return Spec{}, fmt.Errorf("loadgen: offered load must be positive, got %g", rate)
	}
	b, ok := zooBuilders[name]
	if !ok {
		return Spec{}, fmt.Errorf("loadgen: unknown workload %q (valid: %s)",
			name, joinedZooNames())
	}
	return b(rate), nil
}

// ZooNames lists the zoo's workload names, sorted.
func ZooNames() []string {
	names := make([]string, 0, len(zooBuilders))
	for n := range zooBuilders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func joinedZooNames() string {
	s := ""
	for i, n := range ZooNames() {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}
