package tcpfailover_test

import (
	"math/rand"
	"testing"
	"time"

	"tcpfailover"
	"tcpfailover/internal/apps"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/tcp"
)

// The bridge's Delta-seq arithmetic across the 2^32 boundary: the replicas'
// initial sequence numbers straddle the wrap, so Delta-seq itself wraps,
// and the translated stream crosses zero mid-transfer.

func wrapScenario(t *testing.T, primaryISS, secondaryISS uint32) *tcpfailover.Scenario {
	t.Helper()
	opts := tcpfailover.LANOptions()
	sc, err := tcpfailover.NewScenario(opts)
	if err != nil {
		t.Fatal(err)
	}
	sc.Primary.SetTCPConfig(tcp.Config{
		ISS: func(*rand.Rand) tcp.Seq { return tcp.Seq(primaryISS) },
	})
	sc.Secondary.SetTCPConfig(tcp.Config{
		ISS: func(*rand.Rand) tcp.Seq { return tcp.Seq(secondaryISS) },
	})
	if err := sc.Group.OnEach(func(h *netstack.Host) error {
		_, err := apps.NewEchoServer(h.TCP(), 80)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	sc.Start()
	return sc
}

func runWrapTransfer(t *testing.T, sc *tcpfailover.Scenario, crash bool) {
	t.Helper()
	ec := startEchoClient(t, sc, 96*1024)
	if crash {
		if err := sc.RunUntil(func() bool { return ec.received > 24*1024 }, time.Minute); err != nil {
			t.Fatalf("warm-up: %v", err)
		}
		sc.Group.CrashPrimary()
	}
	if err := sc.RunUntil(func() bool { return ec.closed }, 30*time.Minute); err != nil {
		t.Fatalf("run: %v (sent=%d received=%d)", err, ec.sent, ec.received)
	}
	ec.check(t)
}

func TestBridgeDeltaSeqWrap(t *testing.T) {
	cases := []struct {
		name       string
		pISS, sISS uint32
	}{
		{"secondary_near_wrap", 1000, 0xffffffff - 2000},
		{"primary_near_wrap", 0xffffffff - 2000, 1000},
		{"both_near_wrap", 0xffffffff - 500, 0xffffffff - 40000},
		{"secondary_at_max", 123456, 0xffffffff},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runWrapTransfer(t, wrapScenario(t, tc.pISS, tc.sISS), false)
		})
	}
}

func TestBridgeDeltaSeqWrapWithFailover(t *testing.T) {
	// The client's sequence space (synchronized to the secondary) crosses
	// zero right around the takeover.
	runWrapTransfer(t, wrapScenario(t, 7777, 0xffffffff-20000), true)
}

// TestWANFailover: the paper's WAN profile with a primary crash mid-FTP-
// style bulk transfer — high RTT and loss compound with the takeover.
func TestWANFailoverBulk(t *testing.T) {
	opts := tcpfailover.WANOptions()
	sc := newEchoScenario(t, opts)
	ec := startEchoClient(t, sc, 96*1024)
	if err := sc.RunUntil(func() bool { return ec.received > 16*1024 }, 10*time.Minute); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	sc.Group.CrashPrimary()
	if err := sc.RunUntil(func() bool { return ec.closed }, time.Hour); err != nil {
		t.Fatalf("run: %v (sent=%d received=%d)", err, ec.sent, ec.received)
	}
	ec.check(t)
}
