module tcpfailover

go 1.24
